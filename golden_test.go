package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ripe"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Golden determinism tests: the VM is a deterministic cycle-accurate
// simulator, and every hot-path change (predecode, frame pooling, page
// caches) must be *behavior-preserving* — same Cycles, same Steps, same
// traps, bit for bit. These tests pin the exact tables for representative
// workloads (one SPEC-C, one webstack page, one call-heavy micro) under the
// baseline/CPS/CPI configurations, and the RIPE attack outcomes, so a
// refactor can never silently shift the paper's tables.
//
// The golden numbers were re-recorded deliberately when register promotion
// became the default lowering (the PromoteRegisters irgen pass): the
// promoted tables are this commit's defaults, and the *unpromoted* tables
// are kept as a second pinned column, so the promotion cost delta is itself
// golden and the spill-everything path cannot bit-rot. If a deliberate
// cost-model or compiler change shifts either column, re-record in the same
// commit and say so.
//
// The 403.gcc and static-page rows (all columns, cycles and steps) were
// re-recorded when the workloads were rescaled for steady-state
// measurement: 403.gcc gained the liveness-dataflow bitmap passes and went
// from 120 to 600 reps, and the webstack request counts were quadrupled,
// so startup and teardown amortize to noise and the tables measure the
// per-iteration protection cost the paper reports. In the same change
// free() switched from per-word invalidation charging to page-granular
// DropPages (per occupied shadow page/table plus a constant), which is why
// the protected columns are no longer dominated by the final 100k-node
// pool free. Micro rows are untouched. TestGoldenGCCOverheadBand pins the
// headline consequence: 403.gcc cpi overhead stays within the paper's
// single-digit band, asserted at ≤15%.

type goldenRow struct {
	cfgName string
	cfg     core.Config
	cycles  int64
	steps   int64
	exit    int64
}

// goldenCycles is the single source of golden per-config cycle counts for
// the promoted (default) compilation: vanilla, cps, cpi in order.
var goldenCycles = map[string][3]int64{
	"403.gcc":     {9934467, 10041329, 10604775},
	"static-page": {1589580, 1637604, 1811876},
	"micro.fib":   {1979501, 1979501, 1979501},
	"micro.calls": {7732011, 7732011, 7732011},
	// micro.sieve touches no code pointers (one global int array), so like
	// the other micros its protected columns equal vanilla.
	"micro.sieve": {2829691, 2829691, 2829691},
}

// goldenCyclesNoPromote pins the unpromoted reference column (the exact
// pre-promotion goldens).
var goldenCyclesNoPromote = map[string][3]int64{
	"403.gcc":     {18655733, 18762595, 19326041},
	"static-page": {2335514, 2383538, 2557810},
	"micro.fib":   {2935167, 2935167, 2935167},
	"micro.calls": {10948017, 10948017, 10948017},
	"micro.sieve": {6685177, 6685177, 6685177},
}

// goldenSteps pins per-workload dynamic step counts: promoted and
// unpromoted (steps are protection-independent; the promotion delta is the
// pass's whole point, so both are golden).
var goldenSteps = map[string][2]int64{
	"403.gcc":     {7845122, 12140626},
	"static-page": {526489, 893449},
	"micro.fib":   {750862, 1228694},
	"micro.calls": {2944007, 4552009},
	"micro.sieve": {2495247, 4422929},
}

func goldenConfigs(name string, exit int64) []goldenRow {
	cycles := goldenCycles[name]
	uCycles := goldenCyclesNoPromote[name]
	steps := goldenSteps[name]
	rows := []goldenRow{
		{"vanilla", core.Config{DEP: true}, cycles[0], steps[0], exit},
		{"cps", core.Config{Protect: core.CPS, DEP: true}, cycles[1], steps[0], exit},
		{"cpi", core.Config{Protect: core.CPI, DEP: true}, cycles[2], steps[0], exit},
	}
	for i, cfgName := range []string{"vanilla", "cps", "cpi"} {
		cfg := rows[i].cfg
		cfg.NoPromote = true
		rows = append(rows, goldenRow{cfgName + "-nopromote", cfg, uCycles[i], steps[1], exit})
	}
	return rows
}

func TestGoldenCycleTables(t *testing.T) {
	spec, ok := workloads.ByName(workloads.Spec(), "403.gcc")
	if !ok {
		t.Fatal("403.gcc missing")
	}
	web := workloads.WebStack()[0] // static-page
	fib, ok := workloads.ByName(workloads.Micro(), "micro.fib")
	if !ok {
		t.Fatal("micro.fib missing")
	}
	calls, ok := workloads.ByName(workloads.Micro(), "micro.calls")
	if !ok {
		t.Fatal("micro.calls missing")
	}
	sieve, ok := workloads.ByName(workloads.Micro(), "micro.sieve")
	if !ok {
		t.Fatal("micro.sieve missing")
	}

	cases := []struct {
		name string
		src  string
		rows []goldenRow
	}{
		{spec.Name, spec.Src, goldenConfigs(spec.Name, 168)},
		{web.Name, web.Src, goldenConfigs(web.Name, 184)},
		{fib.Name, fib.Src, goldenConfigs(fib.Name, 19)},
		{calls.Name, calls.Src, goldenConfigs(calls.Name, 167)},
		{sieve.Name, sieve.Src, goldenConfigs(sieve.Name, 61)},
	}

	for _, tc := range cases {
		for _, row := range tc.rows {
			t.Run(tc.name+"/"+row.cfgName, func(t *testing.T) {
				// Two independent compilations: each predecodes on its own,
				// so agreement between them (and with the goldens) means the
				// lowering cannot shift results between program instances.
				progA, err := core.Compile(tc.src, row.cfg)
				if err != nil {
					t.Fatal(err)
				}
				progB, err := core.Compile(tc.src, row.cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Two machines of one program additionally share one
				// predecoded Code, the harness CompileCache configuration.
				ra1, err := progA.Run()
				if err != nil {
					t.Fatal(err)
				}
				ra2, err := progA.Run()
				if err != nil {
					t.Fatal(err)
				}
				rb, err := progB.Run()
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range []*vm.Result{ra1, ra2, rb} {
					if r.Trap != vm.TrapExit {
						t.Fatalf("run %d: trap %v (%v)", i, r.Trap, r.Err)
					}
					if r.Cycles != row.cycles || r.Steps != row.steps || r.ExitCode != row.exit {
						t.Errorf("run %d: cycles=%d steps=%d exit=%d, golden cycles=%d steps=%d exit=%d",
							i, r.Cycles, r.Steps, r.ExitCode, row.cycles, row.steps, row.exit)
					}
				}
			})
		}
	}
}

// TestGoldenGCCOverheadBand runs the scaled 403.gcc steady-state workload
// and asserts the headline result the rescaling exists to demonstrate: cpi
// costs at most 15% over vanilla (the paper's Table 2 reports single-digit
// gcc overhead; the bound leaves headroom for deliberate cost-model
// shifts). It measures live rather than trusting the pinned table so the
// band holds even in a commit that re-records the goldens.
func TestGoldenGCCOverheadBand(t *testing.T) {
	spec, ok := workloads.ByName(workloads.Spec(), "403.gcc")
	if !ok {
		t.Fatal("403.gcc missing")
	}
	run := func(cfg core.Config) int64 {
		p, err := core.Compile(spec.Src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Trap != vm.TrapExit {
			t.Fatalf("trap %v (%v)", r.Trap, r.Err)
		}
		return r.Cycles
	}
	van := run(core.Config{DEP: true})
	cpi := run(core.Config{Protect: core.CPI, DEP: true})
	ovh := 100 * float64(cpi-van) / float64(van)
	t.Logf("403.gcc steady-state: vanilla=%d cpi=%d overhead=%.2f%%", van, cpi, ovh)
	if ovh > 15 {
		t.Errorf("403.gcc cpi overhead %.2f%% exceeds the 15%% band", ovh)
	}
}

// TestGoldenRIPEOutcomes pins attack outcomes (trap kinds included) for a
// direct stack-smash and an indirect data-segment attack, with and without
// CPI: the protection tables must be as stable as the cycle tables.
func TestGoldenRIPEOutcomes(t *testing.T) {
	attacks := []ripe.Attack{
		{Technique: ripe.Direct, Location: ripe.Stack, Target: ripe.Ret,
			Payload: ripe.Ret2Libc, Abused: ripe.ViaMemcpy},
		{Technique: ripe.Indirect, Location: ripe.Data, Target: ripe.FuncPtrData,
			Payload: ripe.Ret2Libc, Abused: ripe.ViaMemcpy},
	}
	golden := []struct {
		defense string
		attack  int
		outcome ripe.Outcome
		trap    vm.TrapKind
	}{
		{"none", 0, ripe.Success, vm.TrapHijacked},
		{"none", 1, ripe.Success, vm.TrapExit},
		{"cpi", 0, ripe.Failed, vm.TrapExit},
		{"cpi", 1, ripe.Failed, vm.TrapExit},
	}
	for _, g := range golden {
		d, err := ripe.DefenseByName(g.defense)
		if err != nil {
			t.Fatal(err)
		}
		// Run twice: outcomes must also be run-to-run deterministic.
		for rep := 0; rep < 2; rep++ {
			r, err := ripe.Run(attacks[g.attack], d, 42)
			if err != nil {
				t.Fatal(err)
			}
			if r.Outcome != g.outcome || r.Trap != g.trap {
				t.Errorf("%s/attack%d rep%d: outcome=%v trap=%v, golden outcome=%v trap=%v",
					g.defense, g.attack, rep, r.Outcome, r.Trap, g.outcome, g.trap)
			}
		}
	}
}

// TestGoldenSharedPredecodeParallel runs the golden workloads through the
// parallel harness with a shared CompileCache (the configuration every
// bench command uses) and checks the same golden cycles come out: the
// schedule and the predecode sharing cannot influence any measurement.
func TestGoldenSharedPredecodeParallel(t *testing.T) {
	spec, _ := workloads.ByName(workloads.Spec(), "403.gcc")
	fib, _ := workloads.ByName(workloads.Micro(), "micro.fib")
	calls, _ := workloads.ByName(workloads.Micro(), "micro.calls")
	set := []workloads.Workload{spec, fib, calls}
	cfgs := []harness.NamedConfig{
		{Name: "vanilla", Cfg: core.Config{DEP: true}},
		{Name: "cps", Cfg: core.Config{Protect: core.CPS, DEP: true}},
		{Name: "cpi", Cfg: core.Config{Protect: core.CPI, DEP: true}},
		{Name: "cpi-nopromote", Cfg: core.Config{Protect: core.CPI, DEP: true, NoPromote: true}},
	}
	results, err := harness.RunSuiteOpt(set, cfgs, harness.Options{
		Jobs: 4, Cache: harness.NewCompileCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := goldenCycles[r.Name]
		for i, cfg := range []string{"vanilla", "cps", "cpi"} {
			if got := r.Cycles[cfg]; got != want[i] {
				t.Errorf("%s/%s: cycles=%d, golden %d", r.Name, cfg, got, want[i])
			}
		}
		if got := r.Cycles["cpi-nopromote"]; got != goldenCyclesNoPromote[r.Name][2] {
			t.Errorf("%s/cpi-nopromote: cycles=%d, golden %d",
				r.Name, got, goldenCyclesNoPromote[r.Name][2])
		}
	}
}
