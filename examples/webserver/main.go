// Webserver: the Table 4 three-tier stack as an application. Serves the
// three page types under each protection level and reports throughput
// (requests per million cycles), reproducing the §5.3 observation that the
// interpreter-heavy dynamic page is where CPI's cost concentrates.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("Web stack throughput (requests per Mcycle; higher is better)")
	fmt.Printf("%-14s %10s %10s %10s %10s\n",
		"page", "vanilla", "safestack", "cps", "cpi")

	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"vanilla", core.Config{DEP: true}},
		{"safestack", core.Config{Protect: core.SafeStack, DEP: true}},
		{"cps", core.Config{Protect: core.CPS, DEP: true}},
		{"cpi", core.Config{Protect: core.CPI, DEP: true}},
	}

	requests := map[string]float64{
		"static-page": 1500, "wsgi-page": 500, "dynamic-page": 150,
	}

	for _, page := range workloads.WebStack() {
		row := []float64{}
		for _, c := range cfgs {
			prog, err := core.Compile(page.Src, c.cfg)
			if err != nil {
				log.Fatal(err)
			}
			r, err := prog.Run()
			if err != nil {
				log.Fatal(err)
			}
			if r.Trap != vm.TrapExit {
				log.Fatalf("%s/%s: %v", page.Name, c.name, r.Err)
			}
			row = append(row, requests[page.Name]/(float64(r.Cycles)/1e6))
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %10.1f\n",
			page.Name, row[0], row[1], row[2], row[3])
	}

	fmt.Println("\nOverhead vs vanilla (Table 4 shape: dynamic page hit hardest by CPI):")
	for _, page := range workloads.WebStack() {
		var base float64
		fmt.Printf("%-14s", page.Name)
		for _, c := range cfgs {
			prog, _ := core.Compile(page.Src, c.cfg)
			r, _ := prog.Run()
			cyc := float64(r.Cycles)
			if c.name == "vanilla" {
				base = cyc
				continue
			}
			fmt.Printf("  %s %+5.1f%%", c.name, 100*(cyc/base-1))
		}
		fmt.Println()
	}
}
