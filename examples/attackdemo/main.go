// Attackdemo: the Fig. 5 defense matrix, live. Mounts one representative
// attack per class (stack smash to shellcode, ROP-style return redirect,
// heap function-pointer reuse) against the ladder of defenses and prints
// which mechanism stops what — and what nothing but CPS/CPI stops.
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/ripe"
)

func main() {
	attacks := []ripe.Attack{
		// Injected shellcode via a stack smash: stopped by DEP (and
		// everything above it).
		{Technique: ripe.Direct, Location: ripe.Stack, Target: ripe.Ret,
			Payload: ripe.Shellcode, Abused: ripe.ViaMemcpy},
		// Return-to-libc via the return address: cookies catch the
		// contiguous overflow; DEP does not help.
		{Technique: ripe.Direct, Location: ripe.Stack, Target: ripe.Ret,
			Payload: ripe.Ret2Libc, Abused: ripe.ViaMemcpy},
		// ROP-style gadget redirect through a heap function pointer:
		// survives DEP+ASLR+cookies; CFI/CPS/CPI stop it.
		{Technique: ripe.Direct, Location: ripe.Heap, Target: ripe.FuncPtrHeap,
			Payload: ripe.ROP, Abused: ripe.ViaMemcpy},
		// Code-reuse through a .data function pointer with an arbitrary
		// write: defeats everything except CPS/CPI.
		{Technique: ripe.Indirect, Location: ripe.Data, Target: ripe.FuncPtrData,
			Payload: ripe.Ret2Libc, Abused: ripe.ViaMemcpy},
		// setjmp buffer corruption: the implicitly-created code pointer.
		{Technique: ripe.Direct, Location: ripe.BSS, Target: ripe.LongjmpBufBSS,
			Payload: ripe.Ret2Libc, Abused: ripe.ViaHomebrew},
	}

	defenses := []ripe.Defense{
		{Name: "none", Cfg: core.Config{}},
		{Name: "dep", Cfg: core.Config{DEP: true}},
		{Name: "dep+cookies", Cfg: core.Config{DEP: true, StackCookies: true}},
		{Name: "modern", Cfg: core.Config{DEP: true, ASLR: true,
			StackCookies: true, Fortify: true, PtrMangle: true}},
		{Name: "cfi", Cfg: core.Config{Protect: core.CFI, DEP: true}},
		{Name: "safestack", Cfg: core.Config{Protect: core.SafeStack, DEP: true}},
		{Name: "cps", Cfg: core.Config{Protect: core.CPS, DEP: true}},
		{Name: "cpi", Cfg: core.Config{Protect: core.CPI, DEP: true}},
	}

	fmt.Printf("%-46s", "attack \\ defense")
	for _, d := range defenses {
		fmt.Printf(" %-12s", d.Name)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 46+13*len(defenses)))

	for _, a := range attacks {
		label := fmt.Sprintf("%s/%s/%s", a.Technique, a.Target, a.Payload)
		fmt.Printf("%-46s", label)
		for _, d := range defenses {
			r, err := ripe.Run(a, d, 42)
			if err != nil {
				log.Fatalf("%s vs %s: %v", a, d.Name, err)
			}
			cell := "PWNED"
			if r.Outcome == ripe.Prevented {
				cell = "stopped"
			} else if r.Outcome == ripe.Failed {
				cell = "fails"
			}
			fmt.Printf(" %-12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nPWNED = arbitrary code execution; stopped = defense detected/neutralized;")
	fmt.Println("fails = attack broke for intrinsic reasons (bad guess, crash).")
}
