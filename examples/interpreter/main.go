// Interpreter: the §3.3 Perl-dispatch argument, live.
//
// A bytecode interpreter dispatches opcodes through a function-pointer
// table. Coarse CFI accepts ANY function in the program as an indirect-call
// target, so an attacker who corrupts a dispatch pointer can run any opcode
// handler — or any other function, like the one that spawns a shell. CPS
// only lets the program call through pointers that were legitimately
// written by code-pointer stores, so the attacker can at most replay
// already-assigned handlers; CPI removes even that.
//
//	go run ./examples/interpreter
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vm"
)

const src = `
struct vmstate { int acc; };
int op_inc(struct vmstate *s) { s->acc += 1; return 0; }
int op_dbl(struct vmstate *s) { s->acc *= 2; return 0; }
int op_dec(struct vmstate *s) { s->acc -= 1; return 0; }
int op_spawn_shell(struct vmstate *s) { puts("shell spawned: PWNED"); return 1; }

int (*dispatch[4])(struct vmstate *);
int program[6] = { 0, 1, 1, 2, 0, 1 };

void attack_point(void) {}

int main(void) {
	// Only the three arithmetic handlers are ever assigned; op_spawn_shell
	// exists in the binary but is never made reachable by the program.
	dispatch[0] = op_inc;
	dispatch[1] = op_dbl;
	dispatch[2] = op_dec;
	dispatch[3] = op_inc;

	struct vmstate st;
	st.acc = 1;
	attack_point();
	for (int pc = 0; pc < 6; pc++) {
		if (dispatch[program[pc]](&st)) return 99;
	}
	printf("acc = %d\n", st.acc);
	return st.acc;
}
`

func run(label string, cfg core.Config) {
	prog, err := core.Compile(src, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	// The attacker overwrites dispatch[1] with the address of the function
	// that spawns a shell — a perfectly "valid" function entry, so coarse
	// CFI's target-set check is satisfied.
	m.SetHook("attack_point", func(mm *vm.Machine) {
		atk := mm.Attacker(true)
		shell, _ := atk.FuncAddr("op_spawn_shell")
		slot, _ := atk.GlobalAddr("dispatch")
		atk.WriteWord(slot+8, shell)
	})
	r := m.Run("main")
	fmt.Printf("--- %s ---\n", label)
	fmt.Print(r.Output)
	fmt.Printf("(%v)\n\n", r.Err)
}

func main() {
	fmt.Println("Corrupting the interpreter's opcode table with op_spawn_shell:")
	fmt.Println()
	run("unprotected", core.Config{DEP: true})
	run("CFI: shell is a 'valid target', attack passes the check",
		core.Config{Protect: core.CFI, DEP: true})
	run("CPS: only legitimately-stored code pointers load back",
		core.Config{Protect: core.CPS, DEP: true})
	run("CPI", core.Config{Protect: core.CPI, DEP: true})
}
