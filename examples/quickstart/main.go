// Quickstart: compile a vulnerable C program, exploit it on the unprotected
// machine, then recompile with -fcpi and watch the same exploit bounce off.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
)

// A web-server-ish program with a classic bug: the request handler strcpy's
// attacker input into a fixed buffer that sits next to a function pointer.
const src = `
struct route {
	char path[16];
	void (*handler)(void);
};
void serve_page(void) { puts("200 OK"); }
void admin_shell(void) { puts("root shell: PWNED"); }

int main(void) {
	struct route *r = (struct route *)malloc(sizeof(struct route));
	r->handler = serve_page;

	char request[128];
	read_input(request, 128);
	strcpy(r->path, request); // BUG: unbounded copy into path[16]

	r->handler();
	puts("request handled");
	return 0;
}
`

func main() {
	// Step 1: compile without protection and find the juicy address.
	vanilla, err := core.Compile(src, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := vanilla.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	shell, _ := m.FuncAddr("admin_shell")
	fmt.Printf("target: admin_shell at %#x\n\n", shell)

	// Step 2: craft the exploit: 16 bytes of padding, then the address of
	// admin_shell lands on r->handler.
	exploit := append(make([]byte, 16), le(shell)[:4]...)
	for i := 0; i < 16; i++ {
		exploit[i] = 'A'
	}

	run := func(label string, cfg core.Config) {
		cfg.Input = exploit
		prog, err := core.Compile(src, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := prog.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Print(r.Output)
		fmt.Printf("(exit: %v)\n\n", r.Err)
	}

	// Step 3: the attack succeeds on the unprotected build...
	run("unprotected", core.Config{})

	// ...and is silently neutralized by CPS and CPI: the corrupted regular-
	// region copy of r->handler is ignored; the protected copy in the safe
	// pointer store still points at serve_page (§3.2.2 default mode).
	run("compiled with -fcps", core.Config{Protect: core.CPS})
	run("compiled with -fcpi", core.Config{Protect: core.CPI})
}

func le(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
